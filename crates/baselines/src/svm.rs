//! Soft-margin SVM trained with simplified SMO (Platt).
//!
//! Training sets in explore-by-example are tiny (bounded by the labelling
//! budget, ≤ ~200 examples), so the simplified sequential-minimal-
//! optimization algorithm — pick a KKT-violating α, pair it with a random
//! second α, solve the 2-variable subproblem analytically — converges in
//! milliseconds and needs no external solver.

use crate::kernel::Kernel;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// SVM hyper-parameters.
#[derive(Debug, Clone)]
pub struct SvmConfig {
    /// Soft-margin penalty for negative examples.
    pub c: f64,
    /// Positive-class penalty multiplier: positives use `c · pos_weight`.
    /// Values > 1 counter class imbalance (few positive labels in a small
    /// interest region) by making positive misclassification costlier.
    pub pos_weight: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Consecutive full passes without updates before stopping.
    pub max_passes: usize,
    /// Hard cap on SMO iterations.
    pub max_iter: usize,
    /// Kernel function.
    pub kernel: Kernel,
    /// RNG seed for partner selection.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            c: 10.0,
            pos_weight: 1.0,
            tol: 1e-3,
            max_passes: 5,
            max_iter: 10_000,
            kernel: Kernel::Linear,
            seed: 0,
        }
    }
}

/// A trained SVM model.
#[derive(Debug, Clone)]
pub struct Svm {
    support_x: Vec<Vec<f64>>,
    support_alpha_y: Vec<f64>,
    bias: f64,
    kernel: Kernel,
}

impl Svm {
    /// Train on `(x, y)` with boolean labels (`true` = positive class).
    ///
    /// Returns `None` when training is impossible: empty input or a single
    /// class (callers fall back to a constant prediction).
    pub fn train(x: &[Vec<f64>], y: &[bool], config: &SvmConfig) -> Option<Svm> {
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        let n = x.len();
        if n == 0 || y.iter().all(|&v| v) || y.iter().all(|&v| !v) {
            return None;
        }
        let ys: Vec<f64> = y.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Precompute the kernel matrix (n ≤ a few hundred).
        let mut k = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let v = config.kernel.eval(&x[i], &x[j]);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
        }

        let mut alpha = vec![0.0; n];
        let mut b = 0.0;
        // Per-class box constraint: C_i = C·pos_weight for positives.
        let cap: Vec<f64> = ys
            .iter()
            .map(|&y| {
                if y > 0.0 {
                    config.c * config.pos_weight.max(f64::EPSILON)
                } else {
                    config.c
                }
            })
            .collect();
        let f = |alpha: &[f64], b: f64, k: &[f64], i: usize| -> f64 {
            let mut s = b;
            for j in 0..n {
                if alpha[j] != 0.0 {
                    s += alpha[j] * ys[j] * k[j * n + i];
                }
            }
            s
        };

        let mut passes = 0;
        let mut iter = 0;
        while passes < config.max_passes && iter < config.max_iter {
            let mut changed = 0;
            for i in 0..n {
                iter += 1;
                let ei = f(&alpha, b, &k, i) - ys[i];
                let violates = (ys[i] * ei < -config.tol && alpha[i] < cap[i])
                    || (ys[i] * ei > config.tol && alpha[i] > 0.0);
                if !violates {
                    continue;
                }
                // Random partner j != i.
                let mut j = rng.random_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = f(&alpha, b, &k, j) - ys[j];

                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                // Box constraints with per-class caps: α_j ∈ [lo, hi] along
                // the line preserving Σ α·y.
                let (lo, hi) = if ys[i] != ys[j] {
                    let gamma = aj_old - ai_old;
                    (gamma.max(0.0), (cap[i] + gamma).min(cap[j]))
                } else {
                    let gamma = ai_old + aj_old;
                    ((gamma - cap[i]).max(0.0), gamma.min(cap[j]))
                };
                if (hi - lo).abs() < 1e-12 {
                    continue;
                }
                let eta = 2.0 * k[i * n + j] - k[i * n + i] - k[j * n + j];
                if eta >= 0.0 {
                    continue;
                }
                let mut aj_new = aj_old - ys[j] * (ei - ej) / eta;
                aj_new = aj_new.clamp(lo, hi);
                if (aj_new - aj_old).abs() < 1e-7 {
                    continue;
                }
                let ai_new = ai_old + ys[i] * ys[j] * (aj_old - aj_new);
                alpha[i] = ai_new;
                alpha[j] = aj_new;

                // Bias update (standard simplified-SMO rules).
                let b1 = b
                    - ei
                    - ys[i] * (ai_new - ai_old) * k[i * n + i]
                    - ys[j] * (aj_new - aj_old) * k[i * n + j];
                let b2 = b
                    - ej
                    - ys[i] * (ai_new - ai_old) * k[i * n + j]
                    - ys[j] * (aj_new - aj_old) * k[j * n + j];
                b = if ai_new > 0.0 && ai_new < cap[i] {
                    b1
                } else if aj_new > 0.0 && aj_new < cap[j] {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        // Keep only support vectors.
        let mut support_x = Vec::new();
        let mut support_alpha_y = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-9 {
                support_x.push(x[i].clone());
                support_alpha_y.push(alpha[i] * ys[i]);
            }
        }
        Some(Svm {
            support_x,
            support_alpha_y,
            bias: b,
            kernel: config.kernel,
        })
    }

    /// Signed decision value; positive means the positive class.
    pub fn decision(&self, x: &[f64]) -> f64 {
        let mut s = self.bias;
        for (sv, ay) in self.support_x.iter().zip(&self.support_alpha_y) {
            s += ay * self.kernel.eval(sv, x);
        }
        s
    }

    /// Class prediction.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.decision(x) > 0.0
    }

    /// Number of support vectors retained.
    pub fn n_support(&self) -> usize {
        self.support_x.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let t = i as f64 * 0.1;
            x.push(vec![t, t + 2.0]); // above the diagonal
            y.push(true);
            x.push(vec![t, t - 2.0]); // below the diagonal
            y.push(false);
        }
        (x, y)
    }

    #[test]
    fn separates_linear_data() {
        let (x, y) = linearly_separable();
        let svm = Svm::train(&x, &y, &SvmConfig::default()).unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(svm.predict(xi), yi);
        }
        assert!(svm.predict(&[0.0, 5.0]));
        assert!(!svm.predict(&[0.0, -5.0]));
    }

    #[test]
    fn rbf_solves_xor() {
        let x = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ];
        let y = vec![true, true, false, false];
        let config = SvmConfig {
            kernel: Kernel::Rbf { gamma: 2.0 },
            c: 100.0,
            ..SvmConfig::default()
        };
        let svm = Svm::train(&x, &y, &config).unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(svm.predict(xi), yi, "at {xi:?}");
        }
    }

    #[test]
    fn single_class_returns_none() {
        let x = vec![vec![0.0], vec![1.0]];
        assert!(Svm::train(&x, &[true, true], &SvmConfig::default()).is_none());
        assert!(Svm::train(&x, &[false, false], &SvmConfig::default()).is_none());
        assert!(Svm::train(&[], &[], &SvmConfig::default()).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = linearly_separable();
        let a = Svm::train(&x, &y, &SvmConfig::default()).unwrap();
        let b = Svm::train(&x, &y, &SvmConfig::default()).unwrap();
        assert_eq!(a.decision(&[0.5, 0.5]), b.decision(&[0.5, 0.5]));
    }

    #[test]
    fn decision_magnitude_grows_with_margin() {
        let (x, y) = linearly_separable();
        let svm = Svm::train(&x, &y, &SvmConfig::default()).unwrap();
        let near = svm.decision(&[0.0, 0.1]).abs();
        let far = svm.decision(&[0.0, 10.0]).abs();
        assert!(far > near);
    }

    #[test]
    fn pos_weight_recovers_minority_positives() {
        // 3 positives vs 27 negatives with overlap: the unweighted SVM can
        // afford to give up the positives; a weighted one cannot.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..27 {
            x.push(vec![-0.2 - 0.05 * (i % 9) as f64, (i / 9) as f64 * 0.1]);
            y.push(false);
        }
        for i in 0..3 {
            x.push(vec![0.05, i as f64 * 0.1]);
            y.push(true);
        }
        let weighted = SvmConfig {
            c: 1.0,
            pos_weight: 9.0,
            ..SvmConfig::default()
        };
        let svm = Svm::train(&x, &y, &weighted).unwrap();
        let recalled = x
            .iter()
            .zip(&y)
            .filter(|(_, &yi)| yi)
            .filter(|(xi, _)| svm.predict(xi))
            .count();
        assert_eq!(recalled, 3, "weighted SVM must recall all positives");
    }

    #[test]
    fn support_vectors_are_subset() {
        let (x, y) = linearly_separable();
        let svm = Svm::train(&x, &y, &SvmConfig::default()).unwrap();
        assert!(svm.n_support() >= 2);
        assert!(svm.n_support() <= x.len());
    }
}
