//! CART decision trees — the classifier behind AIDE (Table I).
//!
//! AIDE (Dimitriadou et al., SIGMOD 2014 / TKDE 2016) characterizes
//! user-interest regions with *decision-tree* classifiers whose axis-
//! aligned splits translate directly into query predicates. This is a
//! standard CART implementation: greedy binary splits minimizing Gini
//! impurity, depth/size-limited, with majority-vote leaves.

/// Decision-tree hyper-parameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_split: usize,
    /// Minimum impurity decrease for a split to be kept.
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 8,
            min_split: 4,
            min_gain: 1e-6,
        }
    }
}

/// A fitted binary decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Majority label.
        label: bool,
        /// Positive-class fraction at the leaf (confidence).
        p_positive: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the `< threshold` child.
        left: usize,
        /// Index of the `>= threshold` child.
        right: usize,
    },
}

fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

impl DecisionTree {
    /// Fit a tree on `(x, y)`.
    ///
    /// # Panics
    /// Panics when `x` is empty or lengths mismatch.
    pub fn fit(x: &[Vec<f64>], y: &[bool], config: &TreeConfig) -> DecisionTree {
        assert!(!x.is_empty(), "decision tree needs at least one example");
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        let mut nodes = Vec::new();
        let indices: Vec<usize> = (0..x.len()).collect();
        build(x, y, &indices, config, 0, &mut nodes);
        DecisionTree { nodes }
    }

    /// Majority-label prediction.
    pub fn predict(&self, row: &[f64]) -> bool {
        let (label, _) = self.walk(row);
        label
    }

    /// Positive-class probability estimate (leaf frequency).
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        let (_, p) = self.walk(row);
        p
    }

    fn walk(&self, row: &[f64]) -> (bool, f64) {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { label, p_positive } => return (*label, *p_positive),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (splits + leaves).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (1 for a single leaf).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }
}

/// Recursively build the subtree over `indices`; returns the node index.
fn build(
    x: &[Vec<f64>],
    y: &[bool],
    indices: &[usize],
    config: &TreeConfig,
    depth: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let pos = indices.iter().filter(|&&i| y[i]).count();
    let total = indices.len();
    let make_leaf = |nodes: &mut Vec<Node>| {
        let node = Node::Leaf {
            label: pos * 2 > total,
            p_positive: if total == 0 {
                0.0
            } else {
                pos as f64 / total as f64
            },
        };
        nodes.push(node);
        nodes.len() - 1
    };

    if depth >= config.max_depth || total < config.min_split || pos == 0 || pos == total {
        return make_leaf(nodes);
    }

    // Best split across all features: sort per feature, scan thresholds.
    let n_features = x[indices[0]].len();
    let parent_impurity = gini(pos, total);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    #[allow(clippy::needless_range_loop)] // f indexes every row's feature, not one slice
    for f in 0..n_features {
        let mut order: Vec<usize> = indices.to_vec();
        order.sort_by(|&a, &b| {
            x[a][f]
                .partial_cmp(&x[b][f])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut left_pos = 0usize;
        for (k, &i) in order.iter().enumerate().take(total - 1) {
            if y[i] {
                left_pos += 1;
            }
            // Can't split between equal values.
            if x[order[k]][f] == x[order[k + 1]][f] {
                continue;
            }
            let left_n = k + 1;
            let right_n = total - left_n;
            let right_pos = pos - left_pos;
            let weighted = (left_n as f64 * gini(left_pos, left_n)
                + right_n as f64 * gini(right_pos, right_n))
                / total as f64;
            let gain = parent_impurity - weighted;
            if gain > config.min_gain && best.is_none_or(|(_, _, g)| gain > g) {
                let threshold = (x[order[k]][f] + x[order[k + 1]][f]) / 2.0;
                best = Some((f, threshold, gain));
            }
        }
    }

    let Some((feature, threshold, _)) = best else {
        return make_leaf(nodes);
    };
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        indices.iter().partition(|&&i| x[i][feature] < threshold);

    // Reserve this node's slot, then build children.
    nodes.push(Node::Leaf {
        label: false,
        p_positive: 0.0,
    });
    let me = nodes.len() - 1;
    let left = build(x, y, &left_idx, config, depth + 1, nodes);
    let right = build(x, y, &right_idx, config, depth + 1, nodes);
    nodes[me] = Node::Split {
        feature,
        threshold,
        left,
        right,
    };
    me
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2D box truth: positive iff both coordinates in [0.3, 0.7].
    fn box_data(n_side: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                let a = i as f64 / n_side as f64;
                let b = j as f64 / n_side as f64;
                x.push(vec![a, b]);
                y.push((0.3..=0.7).contains(&a) && (0.3..=0.7).contains(&b));
            }
        }
        (x, y)
    }

    #[test]
    fn fits_axis_aligned_box_perfectly() {
        let (x, y) = box_data(20);
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default());
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| tree.predict(xi) == yi)
            .count();
        assert_eq!(correct, x.len(), "boxes are CART's best case");
        assert!(tree.depth() <= 8);
    }

    #[test]
    fn pure_labels_give_single_leaf() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let tree = DecisionTree::fit(&x, &[true, true, true], &TreeConfig::default());
        assert_eq!(tree.n_nodes(), 1);
        assert!(tree.predict(&[5.0]));
        assert_eq!(tree.predict_proba(&[5.0]), 1.0);
    }

    #[test]
    fn depth_limit_is_respected() {
        let (x, y) = box_data(16);
        let cfg = TreeConfig {
            max_depth: 2,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &cfg);
        assert!(tree.depth() <= 3, "depth {} > limit", tree.depth());
    }

    #[test]
    fn proba_reflects_leaf_purity() {
        // One mixed region that cannot be split further (identical xs).
        let x = vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]];
        let y = vec![true, true, true, false];
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default());
        assert!(tree.predict(&[1.0]));
        assert!((tree.predict_proba(&[1.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn handles_duplicate_feature_values() {
        let x = vec![
            vec![0.0, 1.0],
            vec![0.0, 2.0],
            vec![0.0, 3.0],
            vec![0.0, 4.0],
        ];
        let y = vec![false, false, true, true];
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default());
        // Must split on feature 1 (feature 0 is constant).
        assert!(!tree.predict(&[0.0, 1.5]));
        assert!(tree.predict(&[0.0, 3.5]));
    }

    #[test]
    #[should_panic(expected = "at least one example")]
    fn empty_input_panics() {
        DecisionTree::fit(&[], &[], &TreeConfig::default());
    }
}
