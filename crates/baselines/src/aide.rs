//! AIDE: decision-tree-driven explore-by-example (Table I's first row).
//!
//! AIDE (Dimitriadou et al., SIGMOD 2014) steers exploration with decision
//! trees: each round it retrains a tree on the labels so far and samples
//! new tuples from two streams — *exploitation* around the tree's predicted
//! relevant areas (refining the boundary of discovered interest regions)
//! and *exploration* of uncharted space (finding new regions). The tree's
//! axis-aligned structure is what lets AIDE emit linear query predicates
//! (Table I: "UIS in subspace: Linear").
//!
//! This implementation reproduces that loop at the fidelity LTE's
//! comparison needs: boundary exploitation picks unlabeled tuples with the
//! most *uncertain* leaf probability, exploration picks uniformly at
//! random; the mix is configurable.

use crate::active::{sample_unlabeled, LabeledSet, PoolOracle};
use crate::tree::{DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// AIDE explorer configuration.
#[derive(Debug, Clone)]
pub struct AideExplorer {
    /// Decision-tree hyper-parameters (retrained every round).
    pub tree: TreeConfig,
    /// Random labels drawn before steering starts.
    pub seed_labels: usize,
    /// Pool subsample size evaluated per round.
    pub candidates_per_round: usize,
    /// Fraction of rounds spent on boundary exploitation (the rest explore
    /// randomly).
    pub exploit_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AideExplorer {
    fn default() -> Self {
        Self {
            tree: TreeConfig::default(),
            seed_labels: 6,
            candidates_per_round: 200,
            exploit_fraction: 0.7,
            seed: 0,
        }
    }
}

/// The trained exploration result.
#[derive(Debug, Clone)]
pub struct AideModel {
    tree: Option<DecisionTree>,
    fallback: bool,
    labels_spent: usize,
}

impl AideModel {
    /// Predict interestingness of a tuple.
    pub fn predict(&self, row: &[f64]) -> bool {
        match &self.tree {
            Some(tree) => tree.predict(row),
            None => self.fallback,
        }
    }

    /// Leaf positive-probability (0.5 at the decision boundary).
    pub fn proba(&self, row: &[f64]) -> f64 {
        match &self.tree {
            Some(tree) => tree.predict_proba(row),
            None => {
                if self.fallback {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Labels consumed.
    pub fn labels_spent(&self) -> usize {
        self.labels_spent
    }
}

impl AideExplorer {
    /// Run the exploration loop over `pool` with labelling budget `budget`.
    pub fn explore(&self, pool: &[Vec<f64>], oracle: &dyn PoolOracle, budget: usize) -> AideModel {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut labeled = LabeledSet::new();

        let seed_budget = self.seed_labels.min(budget);
        for i in sample_unlabeled(&mut rng, pool.len(), &labeled, seed_budget) {
            let y = oracle.label(i, &pool[i]);
            labeled.add(i, pool[i].clone(), y);
        }

        while labeled.len() < budget {
            let candidates =
                sample_unlabeled(&mut rng, pool.len(), &labeled, self.candidates_per_round);
            if candidates.is_empty() {
                break;
            }
            let exploit = rng.random::<f64>() < self.exploit_fraction;
            let next = if exploit && labeled.has_both_classes() {
                let tree = DecisionTree::fit(&labeled.x, &labeled.y, &self.tree);
                // Boundary exploitation: probability closest to 0.5.
                candidates
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        let ua = (tree.predict_proba(&pool[a]) - 0.5).abs();
                        let ub = (tree.predict_proba(&pool[b]) - 0.5).abs();
                        ua.partial_cmp(&ub).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("non-empty candidates")
            } else {
                // Exploration: uniform random probe for unseen regions.
                candidates[0]
            };
            let y = oracle.label(next, &pool[next]);
            labeled.add(next, pool[next].clone(), y);
        }

        let tree = if labeled.has_both_classes() {
            Some(DecisionTree::fit(&labeled.x, &labeled.y, &self.tree))
        } else {
            None
        };
        AideModel {
            tree,
            fallback: labeled.n_positive() * 2 > labeled.len(),
            labels_spent: labeled.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_pool() -> Vec<Vec<f64>> {
        let mut pool = Vec::new();
        for i in 0..30 {
            for j in 0..30 {
                pool.push(vec![i as f64 / 30.0, j as f64 / 30.0]);
            }
        }
        pool
    }

    fn box_oracle(_: usize, x: &[f64]) -> bool {
        (0.2..=0.6).contains(&x[0]) && (0.3..=0.8).contains(&x[1])
    }

    #[test]
    fn learns_rectangular_region() {
        let explorer = AideExplorer::default();
        let pool = grid_pool();
        let model = explorer.explore(&pool, &box_oracle, 60);
        let correct = pool
            .iter()
            .filter(|p| model.predict(p) == box_oracle(0, p))
            .count();
        let acc = correct as f64 / pool.len() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
        assert_eq!(model.labels_spent(), 60);
    }

    #[test]
    fn respects_budget_and_handles_single_class() {
        let pool = vec![vec![0.0], vec![0.5], vec![1.0]];
        let never = |_: usize, _: &[f64]| false;
        let model = AideExplorer::default().explore(&pool, &never, 2);
        assert!(model.labels_spent() <= 2);
        assert!(!model.predict(&[0.3]));
        assert_eq!(model.proba(&[0.3]), 0.0);
    }

    #[test]
    fn proba_is_bounded() {
        let explorer = AideExplorer::default();
        let pool = grid_pool();
        let model = explorer.explore(&pool, &box_oracle, 30);
        for p in pool.iter().step_by(37) {
            let prob = model.proba(p);
            assert!((0.0..=1.0).contains(&prob));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let pool = grid_pool();
        let a = AideExplorer::default().explore(&pool, &box_oracle, 25);
        let b = AideExplorer::default().explore(&pool, &box_oracle, 25);
        for p in pool.iter().step_by(53) {
            assert_eq!(a.predict(p), b.predict(p));
        }
    }
}
