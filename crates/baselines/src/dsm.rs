//! DSM: the factorized dual-space model explorer.
//!
//! DSM (Huang et al., PVLDB 2018) is the paper's strongest baseline under
//! its two assumptions — each subspace's interest region is **convex**, and
//! the full-space region is their **conjunction**. Per subspace it maintains
//! a [`lte_geom::polytope::DualSpaceModel`] (certain-positive polytope +
//! certain-negative cones); a kernel SVM handles the residual uncertain
//! region. The polytope model both *prunes* active-learning candidates
//! (certain tuples are never worth labelling) and provides the three-set F1
//! lower bound used as a convergence indicator.
//!
//! Prediction of a full tuple is conjunctive: any certainly-negative
//! subspace ⇒ not interesting; all certainly-positive ⇒ interesting;
//! otherwise fall back to the SVM trained in the full space.

use crate::active::{most_uncertain, sample_unlabeled, LabeledSet, PoolOracle};
use crate::svm::{Svm, SvmConfig};
use lte_data::subspace::Subspace;
use lte_geom::polytope::{DualSpaceModel, ThreeSetLabel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// DSM explorer configuration.
#[derive(Debug, Clone)]
pub struct DsmExplorer {
    /// Subspace decomposition of the user-interest space.
    pub subspaces: Vec<Subspace>,
    /// SVM hyper-parameters for the uncertain region.
    pub svm: SvmConfig,
    /// Random labels drawn before uncertainty sampling starts.
    pub seed_labels: usize,
    /// Pool subsample size evaluated per selection round.
    pub candidates_per_round: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DsmExplorer {
    /// Explorer with default hyper-parameters over the given decomposition.
    pub fn new(subspaces: Vec<Subspace>) -> Self {
        Self {
            subspaces,
            svm: SvmConfig::default(),
            seed_labels: 6,
            candidates_per_round: 100,
            seed: 0,
        }
    }

    /// Run the exploration loop and return the fitted model.
    pub fn explore(&self, pool: &[Vec<f64>], oracle: &dyn PoolOracle, budget: usize) -> DsmModel {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut labeled = LabeledSet::new();
        let mut duals: Vec<DualSpaceModel> = self
            .subspaces
            .iter()
            .map(|_| DualSpaceModel::new())
            .collect();

        let absorb = |labeled: &mut LabeledSet,
                      duals: &mut Vec<DualSpaceModel>,
                      i: usize,
                      row: &[f64],
                      y: bool| {
            labeled.add(i, row.to_vec(), y);
            // Conjunctivity: a positive tuple is positive in *every*
            // subspace; a negative tuple's per-subspace labels are unknown,
            // so only positive labels feed the per-subspace polytopes and
            // negatives feed the cones of subspaces where the tuple is
            // outside the current positive hull (the factorized-DSM rule).
            for (dual, sub) in duals.iter_mut().zip(&self.subspaces) {
                let proj = sub.project_row(row);
                if y {
                    dual.add_labeled(&proj, true);
                } else {
                    dual.add_labeled(&proj, false);
                }
            }
        };

        // Seed phase.
        let seed_budget = self.seed_labels.min(budget);
        for i in sample_unlabeled(&mut rng, pool.len(), &labeled, seed_budget) {
            let y = oracle.label(i, &pool[i]);
            absorb(&mut labeled, &mut duals, i, &pool[i], y);
        }

        // Active rounds with polytope pruning.
        while labeled.len() < budget {
            let candidates =
                sample_unlabeled(&mut rng, pool.len(), &labeled, self.candidates_per_round);
            if candidates.is_empty() {
                break;
            }
            // Prune candidates already decided by the dual-space model: their
            // labels are implied, so labelling them wastes budget.
            let uncertain: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| {
                    matches!(
                        classify_conjunctive(&duals, &self.subspaces, &pool[i]),
                        ThreeSetLabel::Uncertain
                    )
                })
                .collect();
            let effective = if uncertain.is_empty() {
                &candidates
            } else {
                &uncertain
            };

            let next = if labeled.has_both_classes() {
                let svm_cfg = SvmConfig {
                    seed: self.seed ^ labeled.len() as u64,
                    ..self.svm.clone()
                };
                match Svm::train(&labeled.x, &labeled.y, &svm_cfg) {
                    Some(svm) => {
                        most_uncertain(&svm, pool, effective).expect("non-empty candidates")
                    }
                    None => effective[0],
                }
            } else {
                effective[0]
            };
            let y = oracle.label(next, &pool[next]);
            absorb(&mut labeled, &mut duals, next, &pool[next], y);
        }

        let svm = if labeled.has_both_classes() {
            Svm::train(&labeled.x, &labeled.y, &self.svm)
        } else {
            None
        };
        DsmModel {
            duals,
            subspaces: self.subspaces.clone(),
            svm,
            fallback: labeled.n_positive() * 2 > labeled.len(),
            labels_spent: labeled.len(),
        }
    }
}

/// Conjunctive three-set classification across subspaces.
fn classify_conjunctive(
    duals: &[DualSpaceModel],
    subspaces: &[Subspace],
    row: &[f64],
) -> ThreeSetLabel {
    let mut all_positive = true;
    for (dual, sub) in duals.iter().zip(subspaces) {
        let proj = sub.project_row(row);
        match dual.classify(&proj) {
            ThreeSetLabel::Negative => return ThreeSetLabel::Negative,
            ThreeSetLabel::Positive => {}
            ThreeSetLabel::Uncertain => all_positive = false,
        }
    }
    if all_positive {
        ThreeSetLabel::Positive
    } else {
        ThreeSetLabel::Uncertain
    }
}

/// A fitted DSM exploration result.
#[derive(Debug, Clone)]
pub struct DsmModel {
    duals: Vec<DualSpaceModel>,
    subspaces: Vec<Subspace>,
    svm: Option<Svm>,
    fallback: bool,
    labels_spent: usize,
}

impl DsmModel {
    /// Predict interestingness of a full-space tuple.
    pub fn predict(&self, row: &[f64]) -> bool {
        match self.three_set(row) {
            ThreeSetLabel::Positive => true,
            ThreeSetLabel::Negative => false,
            ThreeSetLabel::Uncertain => match &self.svm {
                Some(svm) => svm.predict(row),
                None => self.fallback,
            },
        }
    }

    /// Three-set classification of a full-space tuple.
    pub fn three_set(&self, row: &[f64]) -> ThreeSetLabel {
        classify_conjunctive(&self.duals, &self.subspaces, row)
    }

    /// Three-set-metric F1 lower bound `|D⁺| / (|D⁺| + |Dᵘ|)` over a pool —
    /// DSM's convergence indicator.
    pub fn f1_lower_bound(&self, pool: &[Vec<f64>]) -> f64 {
        let mut np = 0usize;
        let mut nu = 0usize;
        for row in pool {
            match self.three_set(row) {
                ThreeSetLabel::Positive => np += 1,
                ThreeSetLabel::Uncertain => nu += 1,
                ThreeSetLabel::Negative => {}
            }
        }
        if np + nu == 0 {
            0.0
        } else {
            np as f64 / (np + nu) as f64
        }
    }

    /// Number of user labels consumed.
    pub fn labels_spent(&self) -> usize {
        self.labels_spent
    }

    /// Per-subspace dual-space models (for inspection / tests).
    pub fn duals(&self) -> &[DualSpaceModel] {
        &self.duals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4D grid pool; interest = conjunction of two convex 2D boxes.
    fn pool_4d() -> Vec<Vec<f64>> {
        let mut pool = Vec::new();
        for a in 0..8 {
            for b in 0..8 {
                for c in 0..8 {
                    for d in 0..8 {
                        pool.push(vec![
                            a as f64 / 8.0,
                            b as f64 / 8.0,
                            c as f64 / 8.0,
                            d as f64 / 8.0,
                        ]);
                    }
                }
            }
        }
        pool
    }

    fn truth(row: &[f64]) -> bool {
        let in_sub1 = row[0] >= 0.2 && row[0] <= 0.7 && row[1] >= 0.2 && row[1] <= 0.7;
        let in_sub2 = row[2] >= 0.3 && row[2] <= 0.8 && row[3] >= 0.3 && row[3] <= 0.8;
        in_sub1 && in_sub2
    }

    fn oracle_fn() -> impl Fn(usize, &[f64]) -> bool {
        |_, row| truth(row)
    }

    fn subspaces() -> Vec<Subspace> {
        vec![Subspace::new(vec![0, 1]), Subspace::new(vec![2, 3])]
    }

    #[test]
    fn learns_conjunctive_convex_region() {
        let explorer = DsmExplorer::new(subspaces());
        let pool = pool_4d();
        let model = explorer.explore(&pool, &oracle_fn(), 50);
        let correct = pool.iter().filter(|p| model.predict(p) == truth(p)).count();
        let acc = correct as f64 / pool.len() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn positive_region_never_misfires() {
        // Points the dual-space model calls certainly-positive must actually
        // be positive (DSM's key guarantee under convexity).
        let explorer = DsmExplorer::new(subspaces());
        let pool = pool_4d();
        let model = explorer.explore(&pool, &oracle_fn(), 60);
        for p in &pool {
            if model.three_set(p) == ThreeSetLabel::Positive {
                assert!(truth(p), "certain-positive wrong at {p:?}");
            }
        }
    }

    #[test]
    fn f1_lower_bound_grows_with_budget() {
        let explorer = DsmExplorer::new(subspaces());
        let pool = pool_4d();
        let small = explorer.explore(&pool, &oracle_fn(), 12);
        let large = explorer.explore(&pool, &oracle_fn(), 80);
        let eval: Vec<Vec<f64>> = pool.iter().take(800).cloned().collect();
        assert!(
            large.f1_lower_bound(&eval) + 0.05 >= small.f1_lower_bound(&eval),
            "small {} large {}",
            small.f1_lower_bound(&eval),
            large.f1_lower_bound(&eval)
        );
    }

    #[test]
    fn budget_is_respected() {
        let explorer = DsmExplorer::new(subspaces());
        let model = explorer.explore(&pool_4d(), &oracle_fn(), 17);
        assert!(model.labels_spent() <= 17);
    }
}
