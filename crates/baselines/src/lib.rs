//! Explore-by-example baselines the paper compares LTE against (§VIII-A).
//!
//! * **AIDE** (Dimitriadou et al., SIGMOD 2014): decision-tree-steered
//!   exploration — Table I's first row, the lineage's origin.
//! * **AL-SVM** (Dimitriadou et al., TKDE 2016 / AIDE lineage): an SVM
//!   classifier over the user-interest space trained with *active learning*
//!   — each round the most uncertain tuple (smallest |decision value|) is
//!   selected for the user to label.
//! * **DSM** (Huang et al., PVLDB 2018): improves AL-SVM under subspatial
//!   convexity + conjunctivity assumptions with a *dual-space model*: a
//!   certain-positive convex polytope and certain-negative cones per
//!   subspace (geometry in [`lte_geom::polytope`]), which both prune the
//!   active-learning pool and bound accuracy via the three-set metric.
//! * **SVM / SVMr** (§VIII-C): plain SVMs on raw min-max features and on
//!   LTE's preprocessed features respectively, trained on the same initial
//!   tuples as LTE — the degenerate form DSM takes when its convexity
//!   assumption is dropped.
//!
//! The SVM itself is a from-scratch SMO implementation ([`svm`]) with linear
//! and RBF kernels, sized for the few-hundred-example training sets these
//! explorers see.

pub mod active;
pub mod aide;
pub mod alsvm;
pub mod dsm;
pub mod kernel;
pub mod svm;
pub mod tree;

pub use aide::AideExplorer;
pub use alsvm::AlSvmExplorer;
pub use dsm::DsmExplorer;
pub use kernel::Kernel;
pub use svm::{Svm, SvmConfig};
pub use tree::{DecisionTree, TreeConfig};
