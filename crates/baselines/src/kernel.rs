//! SVM kernels.

/// Kernel functions for the SMO SVM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Dot-product kernel.
    Linear,
    /// Gaussian RBF `exp(-γ·‖a−b‖²)`.
    Rbf {
        /// Bandwidth parameter γ.
        gamma: f64,
    },
}

impl Kernel {
    /// RBF kernel with the common `γ = 1/dim` default.
    pub fn rbf_for_dim(dim: usize) -> Self {
        Kernel::Rbf {
            gamma: 1.0 / dim.max(1) as f64,
        }
    }

    /// Evaluate the kernel.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match *self {
            Kernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Kernel::Rbf { gamma } => {
                let d2: f64 = a
                    .iter()
                    .zip(b)
                    .map(|(x, y)| {
                        let d = x - y;
                        d * d
                    })
                    .sum();
                (-gamma * d2).exp()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_dot_product() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn rbf_is_one_at_zero_distance_and_decays() {
        let k = Kernel::Rbf { gamma: 0.5 };
        assert!((k.eval(&[1.0, 1.0], &[1.0, 1.0]) - 1.0).abs() < 1e-12);
        let near = k.eval(&[0.0, 0.0], &[0.1, 0.0]);
        let far = k.eval(&[0.0, 0.0], &[2.0, 0.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn rbf_for_dim_scales_gamma() {
        if let Kernel::Rbf { gamma } = Kernel::rbf_for_dim(4) {
            assert_eq!(gamma, 0.25);
        } else {
            panic!("expected RBF");
        }
        // Zero dim guards against division by zero.
        assert!(matches!(Kernel::rbf_for_dim(0), Kernel::Rbf { .. }));
    }
}
