//! AL-SVM: active-learning SVM exploration over the user-interest space.
//!
//! The AIDE-lineage baseline (§VIII-A): starting from a small random seed
//! sample, iteratively (1) train an SVM on all labels so far, (2) select the
//! most uncertain unlabeled tuple, (3) ask the (simulated) user for its
//! label — until the labelling budget `B` is exhausted. The final SVM is the
//! exploration result: tuples with positive decision values form the
//! predicted user-interest region.

use crate::active::{most_uncertain, sample_unlabeled, LabeledSet, PoolOracle};
use crate::svm::{Svm, SvmConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// AL-SVM configuration.
#[derive(Debug, Clone)]
pub struct AlSvmExplorer {
    /// SVM hyper-parameters (retrained every round).
    pub svm: SvmConfig,
    /// Random labels drawn before uncertainty sampling can start.
    pub seed_labels: usize,
    /// Pool subsample size evaluated per selection round.
    pub candidates_per_round: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AlSvmExplorer {
    fn default() -> Self {
        Self {
            svm: SvmConfig::default(),
            seed_labels: 6,
            candidates_per_round: 200,
            seed: 0,
        }
    }
}

/// The trained exploration result.
#[derive(Debug, Clone)]
pub struct AlSvmModel {
    svm: Option<Svm>,
    /// Constant fallback when no SVM could be trained (single-class labels):
    /// predict the observed class.
    fallback: bool,
    labels_spent: usize,
}

impl AlSvmModel {
    /// Predict interestingness of a tuple.
    pub fn predict(&self, x: &[f64]) -> bool {
        match &self.svm {
            Some(svm) => svm.predict(x),
            None => self.fallback,
        }
    }

    /// Signed decision value (0 for the constant fallback).
    pub fn decision(&self, x: &[f64]) -> f64 {
        match &self.svm {
            Some(svm) => svm.decision(x),
            None => {
                if self.fallback {
                    1.0
                } else {
                    -1.0
                }
            }
        }
    }

    /// Number of user labels consumed.
    pub fn labels_spent(&self) -> usize {
        self.labels_spent
    }
}

impl AlSvmExplorer {
    /// Run the exploration loop: `pool` is the candidate tuple set (feature
    /// vectors), `oracle` the simulated user, `budget` the label budget `B`.
    pub fn explore(&self, pool: &[Vec<f64>], oracle: &dyn PoolOracle, budget: usize) -> AlSvmModel {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut labeled = LabeledSet::new();

        // Seed phase: random tuples until both classes appear (or the seed
        // allotment is spent).
        let seed_budget = self.seed_labels.min(budget);
        for i in sample_unlabeled(&mut rng, pool.len(), &labeled, seed_budget) {
            let y = oracle.label(i, &pool[i]);
            labeled.add(i, pool[i].clone(), y);
        }

        // Active rounds.
        while labeled.len() < budget {
            let candidates =
                sample_unlabeled(&mut rng, pool.len(), &labeled, self.candidates_per_round);
            if candidates.is_empty() {
                break;
            }
            let next = if labeled.has_both_classes() {
                let svm_cfg = SvmConfig {
                    seed: self.seed ^ labeled.len() as u64,
                    ..self.svm.clone()
                };
                match Svm::train(&labeled.x, &labeled.y, &svm_cfg) {
                    Some(svm) => {
                        most_uncertain(&svm, pool, &candidates).expect("candidates is non-empty")
                    }
                    None => candidates[0],
                }
            } else {
                // Still single-class: keep sampling randomly.
                candidates[0]
            };
            let y = oracle.label(next, &pool[next]);
            labeled.add(next, pool[next].clone(), y);
        }

        let svm = if labeled.has_both_classes() {
            Svm::train(&labeled.x, &labeled.y, &self.svm)
        } else {
            None
        };
        let fallback = labeled.n_positive() * 2 > labeled.len();
        AlSvmModel {
            svm,
            fallback,
            labels_spent: labeled.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pool over a 2D grid; interest = x < 0.5 && y < 0.5 (a corner box).
    fn grid_pool() -> Vec<Vec<f64>> {
        let mut pool = Vec::new();
        for i in 0..30 {
            for j in 0..30 {
                pool.push(vec![i as f64 / 30.0, j as f64 / 30.0]);
            }
        }
        pool
    }

    fn corner_oracle(_: usize, x: &[f64]) -> bool {
        x[0] < 0.5 && x[1] < 0.5
    }

    #[test]
    fn learns_corner_box_within_budget() {
        let explorer = AlSvmExplorer::default();
        let model = explorer.explore(&grid_pool(), &corner_oracle, 40);
        assert_eq!(model.labels_spent(), 40);
        // Evaluate accuracy on the pool.
        let pool = grid_pool();
        let correct = pool
            .iter()
            .filter(|p| model.predict(p) == corner_oracle(0, p))
            .count();
        let acc = correct as f64 / pool.len() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn respects_budget() {
        let explorer = AlSvmExplorer::default();
        let model = explorer.explore(&grid_pool(), &corner_oracle, 10);
        assert!(model.labels_spent() <= 10);
    }

    #[test]
    fn single_class_pool_falls_back_to_constant() {
        let pool = vec![vec![0.0], vec![0.1], vec![0.2]];
        let all_negative = |_: usize, _: &[f64]| false;
        let explorer = AlSvmExplorer::default();
        let model = explorer.explore(&pool, &all_negative, 3);
        assert!(!model.predict(&[0.05]));
        assert!(model.decision(&[0.05]) < 0.0);

        let all_positive = |_: usize, _: &[f64]| true;
        let model = explorer.explore(&pool, &all_positive, 3);
        assert!(model.predict(&[0.05]));
    }

    #[test]
    fn more_budget_does_not_hurt_much() {
        // Accuracy at B=60 should be at least that of B=12 minus slack.
        let explorer = AlSvmExplorer::default();
        let pool = grid_pool();
        let acc = |b: usize| {
            let m = explorer.explore(&pool, &corner_oracle, b);
            pool.iter()
                .filter(|p| m.predict(p) == corner_oracle(0, p))
                .count() as f64
                / pool.len() as f64
        };
        assert!(acc(60) + 0.05 >= acc(12), "b60 {} b12 {}", acc(60), acc(12));
    }
}
